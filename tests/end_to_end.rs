//! Cross-crate integration tests through the `gridwatch` facade: the
//! full simulate → train → detect → localize pipeline, plus model
//! persistence.

use std::collections::BTreeMap;

use gridwatch::detect::{
    AlarmLevel, AlarmPolicy, DetectionEngine, EngineConfig, Localizer, PairScreen, Snapshot,
};
use gridwatch::model::{ModelConfig, TransitionModel};
use gridwatch::sim::scenario::{
    figure12_fault_window, group_fault_scenario, localization_scenario, TEST_DAY,
};
use gridwatch::sim::Trace;
use gridwatch::timeseries::{AlignmentPolicy, GroupId, MachineId, PairSeries, Timestamp};

fn engine_for(trace: &Trace, train_days: u64, alarm: AlarmPolicy) -> DetectionEngine {
    let train_end = Timestamp::from_days(train_days);
    let mut training = BTreeMap::new();
    for id in trace.measurement_ids() {
        training.insert(
            id,
            trace.series(id).unwrap().slice(Timestamp::EPOCH, train_end),
        );
    }
    let screen = PairScreen {
        min_cv: 0.05,
        max_pairs: Some(40),
        ..PairScreen::default()
    };
    let histories: Vec<_> = screen
        .select(&training)
        .into_iter()
        .filter_map(|p| {
            PairSeries::align(
                &training[&p.first()],
                &training[&p.second()],
                AlignmentPolicy::Intersect,
            )
            .ok()
            .map(|h| (p, h))
        })
        .collect();
    let config = EngineConfig {
        model: ModelConfig::builder()
            .update_threshold(0.005)
            .build()
            .unwrap(),
        alarm,
        ..EngineConfig::default()
    };
    DetectionEngine::train(histories, config).unwrap()
}

fn replay_day(
    engine: &mut DetectionEngine,
    trace: &Trace,
    day: u64,
) -> Vec<gridwatch::detect::StepReport> {
    let start = Timestamp::from_days(day);
    let end = Timestamp::from_days(day + 1);
    let mut out = Vec::new();
    for t in trace.interval().ticks(start, end) {
        let mut snap = Snapshot::new(t);
        for id in trace.measurement_ids() {
            if let Some(v) = trace.series(id).unwrap().value_at(t) {
                snap.insert(id, v);
            }
        }
        out.push(engine.step(&snap));
    }
    out
}

#[test]
fn fault_raises_measurement_alarm_inside_truth_window() {
    let scenario = group_fault_scenario(GroupId::A, 3, 7);
    let (_, target) = scenario.focus_pair.unwrap();
    let alarm = AlarmPolicy {
        system_threshold: 0.0, // focus on measurement-level alarms
        measurement_threshold: 0.55,
        min_consecutive: 2,
    };
    let mut engine = engine_for(&scenario.trace, 8, alarm);
    let reports = replay_day(&mut engine, &scenario.trace, TEST_DAY);
    let (fs, fe) = figure12_fault_window(GroupId::A);
    let alarms: Vec<_> = reports.iter().flat_map(|r| r.alarms.iter()).collect();
    assert!(!alarms.is_empty(), "the injected fault must raise an alarm");
    for a in &alarms {
        assert!(
            a.at >= fs && a.at < fe,
            "alarm at {} outside truth window [{fs}, {fe})",
            a.at
        );
        assert_eq!(
            a.level,
            AlarmLevel::Measurement(target),
            "alarm should name the broken measurement"
        );
    }
}

#[test]
fn clean_day_raises_no_alarms() {
    let scenario = gridwatch::sim::scenario::clean_scenario(GroupId::B, 3, 9);
    let alarm = AlarmPolicy {
        system_threshold: 0.6,
        measurement_threshold: 0.3,
        min_consecutive: 2,
    };
    let mut engine = engine_for(&scenario.trace, 8, alarm);
    let reports = replay_day(&mut engine, &scenario.trace, TEST_DAY);
    let alarm_count: usize = reports.iter().map(|r| r.alarms.len()).sum();
    assert_eq!(alarm_count, 0, "no faults were injected");
}

#[test]
fn localization_ranks_degraded_machine_worst() {
    let scenario = localization_scenario(GroupId::C, 4, 22);
    let mut engine = engine_for(&scenario.trace, 15, AlarmPolicy::default());
    let reports = replay_day(&mut engine, &scenario.trace, TEST_DAY);
    // Average machine scores across the day.
    let mut acc: BTreeMap<MachineId, (f64, usize)> = BTreeMap::new();
    for r in &reports {
        for (m, q) in r.scores.machine_scores() {
            let e = acc.entry(m).or_insert((0.0, 0));
            e.0 += q;
            e.1 += 1;
        }
    }
    let mut ranked: Vec<(MachineId, f64)> = acc
        .into_iter()
        .map(|(m, (s, n))| (m, s / n as f64))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    assert_eq!(ranked[0].0, MachineId::new(0), "ranking: {ranked:?}");

    // The board-level localizer agrees on the final instant.
    let last = reports.last().unwrap();
    if let Some(suspect) = Localizer::prime_suspect(&last.scores) {
        assert!(suspect.score <= ranked.last().unwrap().1);
    }
}

#[test]
fn persisted_model_scores_identically() {
    let scenario = gridwatch::sim::scenario::clean_scenario(GroupId::A, 1, 5);
    let mut ids = scenario.trace.measurement_ids();
    let a = ids.next().unwrap();
    let b = ids.nth(1).unwrap();
    let sa = scenario
        .trace
        .series(a)
        .unwrap()
        .slice(Timestamp::EPOCH, Timestamp::from_days(5));
    let sb = scenario
        .trace
        .series(b)
        .unwrap()
        .slice(Timestamp::EPOCH, Timestamp::from_days(5));
    let history = PairSeries::align(&sa, &sb, AlignmentPolicy::Intersect).unwrap();
    let model = TransitionModel::fit(&history, ModelConfig::default()).unwrap();

    let json = serde_json::to_string(&model).unwrap();
    let restored: TransitionModel = serde_json::from_str(&json).unwrap();
    assert_eq!(model, restored);

    // Identical scores on fresh points.
    let test_a = scenario.trace.series(a).unwrap();
    let test_b = scenario.trace.series(b).unwrap();
    for t in scenario.trace.interval().ticks(
        Timestamp::from_days(5),
        Timestamp::from_secs(5 * 86_400 + 7200),
    ) {
        let p = gridwatch::timeseries::Point2::new(
            test_a.value_at(t).unwrap(),
            test_b.value_at(t).unwrap(),
        );
        let s1 = model.score_point(p);
        let s2 = restored.score_point(p);
        assert_eq!(s1, s2);
    }
}

#[test]
fn facade_reexports_compose() {
    // The facade's modules interoperate without importing the member
    // crates directly.
    let history = gridwatch::timeseries::PairSeries::from_samples(
        (0..100u64).map(|k| (k * 360, k as f64 % 10.0, (k as f64 % 10.0) * 3.0)),
    )
    .unwrap();
    let model =
        gridwatch::model::TransitionModel::fit(&history, gridwatch::model::ModelConfig::default())
            .unwrap();
    assert!(model.grid().cell_count() > 0);
    let mut detector = gridwatch::baselines::MarkovDetector::default();
    gridwatch::baselines::PairDetector::fit(&mut detector, &history).unwrap();
}
