//! Workspace-level regression tests for the cheap, deterministic paper
//! artifacts: whenever any crate changes, these must keep reproducing
//! the paper's printed numbers exactly.

use gridwatch::eval::experiments;
use gridwatch::eval::harness::RunOptions;

fn assert_experiment_passes(name: &str) {
    let result = experiments::run_by_name(name, RunOptions::default())
        .unwrap_or_else(|| panic!("unknown experiment {name}"));
    assert!(
        result.all_checks_passed(),
        "experiment {name} failed its shape checks:\n{}",
        result.to_ascii()
    );
}

#[test]
fn figure5_prior_matrix_is_exact() {
    assert_experiment_passes("fig5");
}

#[test]
fn figure11_fitness_example_is_exact() {
    assert_experiment_passes("fig11");
}

#[test]
fn figure9_10_posterior_shift() {
    assert_experiment_passes("fig9_10");
}

#[test]
fn figure7_8_grid_adaptation() {
    assert_experiment_passes("fig7_8");
}

#[test]
fn figure1_correlated_series() {
    assert_experiment_passes("fig1");
}

#[test]
fn figure2_correlation_shapes() {
    assert_experiment_passes("fig2");
}

#[test]
fn section42_spatial_closeness() {
    assert_experiment_passes("closeness");
}

#[test]
fn experiment_registry_is_complete() {
    for name in experiments::ALL {
        assert!(
            experiments::run_by_name("definitely-not-an-experiment", RunOptions::default())
                .is_none()
        );
        // Registry lookup must at least resolve; heavy experiments are
        // exercised by their own crate tests.
        let _ = name;
    }
    assert_eq!(experiments::ALL.len(), 15);
}
